// Command snapea-load drives snapea-serve with synthetic traffic and
// reports latency percentiles and throughput — the measurement side of
// the serving subsystem.
//
//	snapea-load -url http://localhost:8080 -model tinynet -n 500 -c 8
//	snapea-load -url http://localhost:8080 -n 1000 -rate 200      # open loop, 200 req/s
//	snapea-load -url http://localhost:8080 -body raw -out BENCH_SERVE.json
//
// Closed loop (-c) keeps a fixed number of in-flight requests; open loop
// (-rate) fires at a fixed arrival rate regardless of completions — the
// harsher model of production traffic. Every response must carry a
// status in -allow (default 200,429) or the tool exits nonzero, which
// lets CI assert "all 2xx/429" over a whole run. The summary is printed
// as a table and optionally written as JSON (atomically) with -out.
package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"snapea/internal/atomicfile"
	"snapea/internal/cli"
	"snapea/internal/models"
	"snapea/internal/report"
	"snapea/internal/tensor"
)

// Summary is the machine-readable load report (-out).
type Summary struct {
	URL              string         `json:"url"`
	Model            string         `json:"model"`
	Mode             string         `json:"mode"`
	Body             string         `json:"body"`
	Requests         int            `json:"requests"`
	Concurrency      int            `json:"concurrency,omitempty"`
	RateRPS          float64        `json:"rate_rps,omitempty"`
	DurationS        float64        `json:"duration_s"`
	ThroughputRPS    float64        `json:"throughput_rps"`
	StatusCounts     map[string]int `json:"status_counts"`
	TransportErrors  int            `json:"transport_errors"`
	Disallowed       int            `json:"disallowed"`
	P50MS            float64        `json:"p50_ms"`
	P95MS            float64        `json:"p95_ms"`
	P99MS            float64        `json:"p99_ms"`
	MeanMS           float64        `json:"mean_ms"`
	MaxMS            float64        `json:"max_ms"`
	MaxBatch         int            `json:"max_batch"`
	MeanMacReduction float64        `json:"mean_mac_reduction"`
	// Retries counts closed-loop re-sends after a 429/503 answer; the
	// final attempt's status is what StatusCounts records.
	Retries int `json:"retries,omitempty"`
	// RetryStatusCounts breaks Retries down by the status that triggered
	// each re-send. Behind a gateway this is what separates replica
	// admission pushback (429) from fleet-level unavailability (503) —
	// StatusCounts alone can't, since it only sees final attempts.
	RetryStatusCounts map[string]int `json:"retry_status_counts,omitempty"`
}

// retryStats accumulates the closed-loop retry breakdown across workers.
type retryStats struct {
	mu       sync.Mutex
	total    int
	byStatus map[string]int
}

func (rs *retryStats) record(status int) {
	rs.mu.Lock()
	rs.total++
	rs.byStatus[strconv.Itoa(status)]++
	rs.mu.Unlock()
}

// outcome is one request's measurement (of its final attempt, when the
// closed loop retried).
type outcome struct {
	status     int
	ms         float64
	batch      int
	reduction  float64
	retryAfter time.Duration // parsed Retry-After hint, 0 if absent
	err        error
}

func main() {
	url := flag.String("url", "http://localhost:8080", "base URL of snapea-serve")
	model := flag.String("model", "tinynet", "model to request")
	mode := flag.String("mode", "exact", "execution mode: exact or predictive")
	n := flag.Int("n", 500, "total requests")
	c := flag.Int("c", 8, "closed-loop concurrency (ignored with -rate)")
	rate := flag.Float64("rate", 0, "open-loop arrival rate in req/s (0 = closed loop)")
	body := flag.String("body", "json", "request body encoding: json or raw")
	retries := flag.Int("retries", 3, "closed-loop retries per request on 429/503, honoring Retry-After with jittered exponential backoff (0 disables; open loop never retries)")
	seed := flag.Uint64("seed", 42, "input-generation seed")
	warmup := flag.Int("warmup", 0, "untimed warmup requests before the measured run")
	waitReady := flag.Duration("wait-ready", 30*time.Second, "poll /readyz this long before starting (0 = skip)")
	allow := flag.String("allow", "200,429", "comma-separated statuses that do not fail the run")
	out := flag.String("out", "", "write the summary JSON here (atomically)")
	scale := flag.String("scale", "reduced", "model scale (must match the server): reduced or full")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = none)")
	obs := cli.ObsFlags(nil)
	flag.Parse()
	if err := cli.ApplyEnv(nil, cli.LoadEnv(), cli.ObsEnv()); err != nil {
		cli.Fatalf("snapea-load", "%v", err)
	}

	obsStop, err := obs.Start("snapea-load")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		cli.Exit(2)
	}
	defer obsStop()

	ctx, stop := cli.Context(*timeout)
	defer stop()

	if *n <= 0 {
		cli.Fatalf("snapea-load", "-n must be positive")
	}
	if *c < 1 {
		*c = 1
	}
	allowed := map[int]bool{}
	for _, s := range strings.Split(*allow, ",") {
		code, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			cli.Fatalf("snapea-load", "bad -allow entry %q", s)
		}
		allowed[code] = true
	}

	// The input shape comes from a weightless local build of the same
	// model — no extra server round-trip, no weight-init cost.
	opt := models.Options{Seed: *seed, SkipInit: true}
	if *scale == "full" {
		opt.Scale = models.Full
	}
	m, err := models.Build(*model, opt)
	if err != nil {
		cli.Fatalf("snapea-load", "%v", err)
	}
	bodies, contentType := makeBodies(m.InputShape.Elems(), *body, *seed)

	client := &http.Client{}
	target := fmt.Sprintf("%s/v1/predict?model=%s&mode=%s", strings.TrimRight(*url, "/"), *model, *mode)

	if *waitReady > 0 {
		if err := pollReady(ctx, client, strings.TrimRight(*url, "/")+"/readyz", *waitReady); err != nil {
			cli.Fatalf("snapea-load", "%v", err)
		}
	}
	for i := 0; i < *warmup; i++ {
		fire(ctx, client, target, contentType, bodies[i%len(bodies)])
	}

	outcomes := make([]outcome, *n)
	retried := &retryStats{byStatus: make(map[string]int)}
	start := time.Now()
	if *rate > 0 {
		// Open loop never retries: a retry is an extra arrival, and the
		// whole point of -rate is a fixed arrival schedule.
		runOpenLoop(ctx, client, target, contentType, bodies, outcomes, *rate)
	} else {
		runClosedLoop(ctx, client, target, contentType, bodies, outcomes, *c, *retries, *seed, retried)
	}
	elapsed := time.Since(start)

	if err := ctx.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "snapea-load: interrupted: %v\n", err)
		cli.Exit(3)
	}

	sum := summarize(outcomes, allowed)
	sum.Retries = retried.total
	if len(retried.byStatus) > 0 {
		sum.RetryStatusCounts = retried.byStatus
	}
	sum.URL = *url
	sum.Model = *model
	sum.Mode = *mode
	sum.Body = *body
	sum.Requests = *n
	sum.DurationS = elapsed.Seconds()
	sum.ThroughputRPS = float64(*n) / elapsed.Seconds()
	if *rate > 0 {
		sum.RateRPS = *rate
	} else {
		sum.Concurrency = *c
	}
	render(sum)

	if *out != "" {
		data, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			cli.Fatalf("snapea-load", "%v", err)
		}
		if err := atomicfile.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			cli.Fatalf("snapea-load", "%v", err)
		}
		fmt.Fprintf(os.Stderr, "snapea-load: summary written to %s\n", *out)
	}
	if sum.TransportErrors > 0 || sum.Disallowed > 0 {
		cli.Fatalf("snapea-load", "%d transport errors, %d responses outside -allow %s",
			sum.TransportErrors, sum.Disallowed, *allow)
	}
}

// makeBodies pre-encodes a cycle of distinct inputs so the measured loop
// does no generation work.
func makeBodies(elems int, encoding string, seed uint64) ([][]byte, string) {
	const variants = 16
	rng := tensor.NewRNG(seed)
	bodies := make([][]byte, variants)
	for v := range bodies {
		in := make([]float32, elems)
		t := tensor.Wrap(tensor.Shape{N: 1, C: elems, H: 1, W: 1}, in)
		tensor.FillNorm(t, rng, 0, 1)
		switch encoding {
		case "raw":
			raw := make([]byte, elems*4)
			for i, f := range in {
				binary.LittleEndian.PutUint32(raw[i*4:], math.Float32bits(f))
			}
			bodies[v] = raw
		case "json":
			data, err := json.Marshal(map[string]any{"input": in})
			if err != nil {
				cli.Fatalf("snapea-load", "%v", err)
			}
			bodies[v] = data
		default:
			cli.Fatalf("snapea-load", "unknown -body %q (want json or raw)", encoding)
		}
	}
	if encoding == "raw" {
		return bodies, "application/octet-stream"
	}
	return bodies, "application/json"
}

func pollReady(ctx context.Context, client *http.Client, url string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		resp, err := client.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server not ready after %s (%s)", wait, url)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// fire issues one request and parses the predict response when 200.
func fire(ctx context.Context, client *http.Client, target, contentType string, body []byte) outcome {
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target, bytes.NewReader(body))
	if err != nil {
		return outcome{err: err}
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := client.Do(req)
	if err != nil {
		return outcome{err: err, ms: float64(time.Since(start)) / float64(time.Millisecond)}
	}
	defer resp.Body.Close()
	o := outcome{status: resp.StatusCode}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(strings.TrimSpace(s)); err == nil && secs > 0 {
			o.retryAfter = time.Duration(secs) * time.Second
		}
	}
	if resp.StatusCode == http.StatusOK {
		var pr struct {
			BatchSize    int     `json:"batch_size"`
			MacReduction float64 `json:"mac_reduction"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&pr); err == nil {
			o.batch = pr.BatchSize
			o.reduction = pr.MacReduction
		}
	}
	o.ms = float64(time.Since(start)) / float64(time.Millisecond)
	return o
}

// runClosedLoop keeps c requests in flight until n are done. A 429
// (queue full) or 503 (draining, circuit open) answer is retried up to
// retries times with jittered exponential backoff, honoring the
// server's Retry-After hint when present — the well-behaved-client
// protocol the server's admission control assumes.
func runClosedLoop(ctx context.Context, client *http.Client, target, contentType string, bodies [][]byte, outcomes []outcome, c, retries int, seed uint64, retried *retryStats) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(seed) + int64(w)))
			for ctx.Err() == nil {
				i := int(next.Add(1) - 1)
				if i >= len(outcomes) {
					return
				}
				outcomes[i] = fireRetry(ctx, client, target, contentType, bodies[i%len(bodies)], retries, rng, retried)
			}
		}(w)
	}
	wg.Wait()
}

// fireRetry issues one request, re-sending on 429/503 with backoff. The
// base wait is the server's Retry-After when it sent one, else an
// exponential schedule from 50ms; either way the actual sleep is
// full-jittered into [base/2, base] so a fleet of backed-off clients
// does not return in lockstep.
func fireRetry(ctx context.Context, client *http.Client, target, contentType string, body []byte, retries int, rng *rand.Rand, retried *retryStats) outcome {
	backoff := 50 * time.Millisecond
	for attempt := 0; ; attempt++ {
		o := fire(ctx, client, target, contentType, body)
		if o.err != nil || attempt >= retries ||
			(o.status != http.StatusTooManyRequests && o.status != http.StatusServiceUnavailable) {
			return o
		}
		wait := backoff
		if o.retryAfter > 0 {
			wait = o.retryAfter
		}
		wait = wait/2 + time.Duration(rng.Int63n(int64(wait/2)+1))
		retried.record(o.status)
		select {
		case <-ctx.Done():
			return o
		case <-time.After(wait):
		}
		backoff *= 2
	}
}

// runOpenLoop fires requests at a fixed arrival rate, regardless of how
// fast the server answers.
func runOpenLoop(ctx context.Context, client *http.Client, target, contentType string, bodies [][]byte, outcomes []outcome, rate float64) {
	interval := time.Duration(float64(time.Second) / rate)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var wg sync.WaitGroup
	for i := range outcomes {
		select {
		case <-ctx.Done():
			wg.Wait()
			return
		case <-ticker.C:
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outcomes[i] = fire(ctx, client, target, contentType, bodies[i%len(bodies)])
		}(i)
	}
	wg.Wait()
}

func summarize(outcomes []outcome, allowed map[int]bool) Summary {
	sum := Summary{StatusCounts: make(map[string]int)}
	var okLat []float64
	var redSum float64
	var redN int
	for _, o := range outcomes {
		if o.err != nil {
			sum.TransportErrors++
			continue
		}
		sum.StatusCounts[strconv.Itoa(o.status)]++
		if !allowed[o.status] {
			sum.Disallowed++
		}
		if o.status == http.StatusOK {
			okLat = append(okLat, o.ms)
			redSum += o.reduction
			redN++
			if o.batch > sum.MaxBatch {
				sum.MaxBatch = o.batch
			}
		}
	}
	if len(okLat) > 0 {
		sum.P50MS = report.Percentile(okLat, 0.50)
		sum.P95MS = report.Percentile(okLat, 0.95)
		sum.P99MS = report.Percentile(okLat, 0.99)
		sort.Float64s(okLat)
		sum.MaxMS = okLat[len(okLat)-1]
		var total float64
		for _, v := range okLat {
			total += v
		}
		sum.MeanMS = total / float64(len(okLat))
	}
	if redN > 0 {
		sum.MeanMacReduction = redSum / float64(redN)
	}
	return sum
}

func render(sum Summary) {
	t := report.Table{
		Title:   fmt.Sprintf("snapea-load: %s mode=%s (%d requests)", sum.Model, sum.Mode, sum.Requests),
		Headers: []string{"Metric", "Value"},
	}
	t.Add("throughput", fmt.Sprintf("%.1f req/s", sum.ThroughputRPS))
	t.Add("p50 latency", fmt.Sprintf("%.2f ms", sum.P50MS))
	t.Add("p95 latency", fmt.Sprintf("%.2f ms", sum.P95MS))
	t.Add("p99 latency", fmt.Sprintf("%.2f ms", sum.P99MS))
	t.Add("mean / max", fmt.Sprintf("%.2f / %.2f ms", sum.MeanMS, sum.MaxMS))
	t.Add("max batch", strconv.Itoa(sum.MaxBatch))
	t.Add("mean MAC reduction", report.Pct(sum.MeanMacReduction))
	var codes []string
	for code := range sum.StatusCounts {
		codes = append(codes, code)
	}
	sort.Strings(codes)
	for _, code := range codes {
		t.Add("status "+code, strconv.Itoa(sum.StatusCounts[code]))
	}
	if sum.Retries > 0 {
		t.Add("retries", strconv.Itoa(sum.Retries))
		var rcodes []string
		for code := range sum.RetryStatusCounts {
			rcodes = append(rcodes, code)
		}
		sort.Strings(rcodes)
		for _, code := range rcodes {
			t.Add("  retried on "+code, strconv.Itoa(sum.RetryStatusCounts[code]))
		}
	}
	if sum.TransportErrors > 0 {
		t.Add("transport errors", strconv.Itoa(sum.TransportErrors))
	}
	t.Render(os.Stdout)
}
