// Command snapea-vet runs the repository's static invariant analyzers
// (internal/tools/snapeavet) over the whole module: determinism
// (detorder, nowallclock), durability (atomicwrite), pooling lifecycle
// (poolbalance) and metric conventions (metricdomain). It prints one
// line per finding and exits 1 when any invariant is violated, 2 on
// load or usage errors — the same contract as go vet, so `make
// vet-snapea` can sit next to `go vet` in the ci chain.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"snapea/internal/tools/snapeavet"
)

func main() {
	root := flag.String("root", ".", "module root (directory containing go.mod)")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: snapea-vet [-root dir] [-run name,...] [./...]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the snapea invariant analyzers over the whole module.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range snapeavet.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	// Accept "./..." for go-vet muscle memory; the checker always
	// analyzes the whole module rooted at -root.
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "." {
			fmt.Fprintf(os.Stderr, "snapea-vet: unsupported package pattern %q (the whole module is always analyzed)\n", arg)
			os.Exit(2)
		}
	}

	var names []string
	if *run != "" {
		names = strings.Split(*run, ",")
	}
	diags, err := snapeavet.Run(*root, names)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snapea-vet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "snapea-vet: %d invariant violation(s)\n", len(diags))
		os.Exit(1)
	}
}
