// Command snapea-sim cycle-simulates one network on the SnaPEA
// accelerator and the EYERISS baseline and prints per-layer cycles,
// energy and the resulting speedup.
//
//	snapea-sim -net squeezenet -mode exact
//	snapea-sim -net googlenet -mode predictive -eps 0.03 -lanes 2
//	snapea-sim -net alexnet -fault-weight-bitflip 1e-4 -fault-stuck 1e-3
//
// When any -fault-* rate is set the compiled speculation state (weight
// buffers, Th/N registers) is corrupted by a deterministic injector
// before tracing, and the faulty machine is what gets simulated.
package main

import (
	"flag"
	"fmt"
	"os"

	"snapea/internal/cli"
	"snapea/internal/experiments"
	"snapea/internal/faults"
	"snapea/internal/report"
	"snapea/internal/sim"
	"snapea/internal/snapea"
)

func main() {
	net := flag.String("net", "squeezenet", "network to simulate")
	mode := flag.String("mode", "exact", "exact or predictive")
	eps := flag.Float64("eps", 0.03, "accuracy budget for predictive mode")
	lanes := flag.Float64("lanes", 1, "lane-count factor relative to the default 4 (0.5, 1, 2, 4)")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	layers := flag.Bool("layers", false, "print per-layer breakdown")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = none)")
	faultFlags := cli.FaultFlags(nil)
	workers := cli.WorkersFlag(nil)
	obs := cli.ObsFlags(nil)
	flag.Parse()
	if err := cli.ApplyEnv(nil, cli.ObsEnv()); err != nil {
		cli.Fatalf("snapea-sim", "%v", err)
	}
	workers.Apply()

	obsStop, err := obs.Start("snapea-sim")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		cli.Exit(2)
	}
	defer obsStop()

	ctx, stop := cli.Context(*timeout)
	defer stop()

	faultCfg, err := faultFlags.Config(*seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "snapea-sim:", err)
		cli.Exit(2)
	}

	s := experiments.New(experiments.Config{
		Networks: []string{*net},
		Seed:     *seed,
		Epsilon:  *eps,
		Out:      os.Stderr,
		Ctx:      ctx,
	})

	var snap, base *sim.Result
	var trace *snapea.NetTrace
	var prep *experiments.Prepared
	var params map[string]snapea.LayerParams
	switch *mode {
	case "exact":
		r, err := s.ExactErr(*net)
		if err != nil {
			cli.Fatalf("snapea-sim", "%v", err)
		}
		snap, base, trace, prep = r.Snap, r.Base, r.Trace, r.Prep
	case "predictive":
		r, err := s.PredictiveErr(*net, *eps)
		if err != nil {
			cli.Fatalf("snapea-sim", "%v", err)
		}
		snap, base, trace, prep = r.Snap, r.Base, r.Trace, r.Prep
		params = r.Opt.Params
	default:
		fmt.Fprintf(os.Stderr, "snapea-sim: unknown mode %q\n", *mode)
		cli.Exit(2)
	}

	if faultCfg.Enabled() {
		// Corrupt the compiled machine and re-trace: faults hit the
		// deployed weight/threshold buffers, not the tuning pipeline.
		inj := faults.New(faultCfg)
		faulty := snapea.CompileFaulty(prep.Model, params, snapea.NegByMagnitude, inj)
		trace = snapea.NewNetTrace()
		opts := snapea.RunOpts{CollectWindows: true, CollectPrediction: params != nil}
		for _, img := range prep.TestImgs {
			if err := ctx.Err(); err != nil {
				cli.Fatalf("snapea-sim", "%v", err)
			}
			faulty.Forward(img, opts, trace)
		}
		snap, err = sim.SimulateCtx(ctx, sim.SnaPEAConfig(), sim.LoadsFromTrace(prep.Model, trace, sim.Spills(prep.Model)))
		if err != nil {
			cli.Fatalf("snapea-sim", "%v", err)
		}
		fmt.Fprintf(os.Stderr, "snapea-sim: injected faults: %s\n", inj.Stats())
	}

	if *lanes != 1 {
		// Re-simulate the same trace at a different lane count.
		cfg := sim.SnaPEAConfig().WithLanes(*lanes)
		loads := sim.LoadsFromTrace(prep.Model, trace, sim.Spills(prep.Model))
		snap, err = sim.SimulateCtx(ctx, cfg, loads)
		if err != nil {
			cli.Fatalf("snapea-sim", "%v", err)
		}
	}

	fmt.Printf("network   : %s (%s mode)\n", *net, *mode)
	fmt.Printf("snapea    : %s\n", snap)
	fmt.Printf("eyeriss   : %s\n", base)
	fmt.Printf("speedup   : %.2fx\n", snap.Speedup(base))
	fmt.Printf("energy red: %.2fx\n", snap.EnergyReduction(base))
	if *layers {
		t := report.Table{
			Title:   "Per-layer breakdown",
			Headers: []string{"Layer", "SnaPEA cycles", "EYERISS cycles", "Speedup", "Util"},
		}
		baseBy := map[string]int64{}
		for _, l := range base.Layers {
			baseBy[l.Name] = l.Cycles
		}
		for _, l := range snap.Layers {
			sp := 0.0
			if l.Cycles > 0 {
				sp = float64(baseBy[l.Name]) / float64(l.Cycles)
			}
			t.Add(l.Name, fmt.Sprint(l.Cycles), fmt.Sprint(baseBy[l.Name]), report.X(sp), report.F(l.Utilization, 2))
		}
		t.Render(os.Stdout)
	}
}
