// Command snapea-sim cycle-simulates one network on the SnaPEA
// accelerator and the EYERISS baseline and prints per-layer cycles,
// energy and the resulting speedup.
//
//	snapea-sim -net squeezenet -mode exact
//	snapea-sim -net googlenet -mode predictive -eps 0.03 -lanes 2
package main

import (
	"flag"
	"fmt"
	"os"

	"snapea/internal/experiments"
	"snapea/internal/report"
	"snapea/internal/sim"
)

func main() {
	net := flag.String("net", "squeezenet", "network to simulate")
	mode := flag.String("mode", "exact", "exact or predictive")
	eps := flag.Float64("eps", 0.03, "accuracy budget for predictive mode")
	lanes := flag.Float64("lanes", 1, "lane-count factor relative to the default 4 (0.5, 1, 2, 4)")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	layers := flag.Bool("layers", false, "print per-layer breakdown")
	flag.Parse()

	s := experiments.New(experiments.Config{
		Networks: []string{*net},
		Seed:     *seed,
		Epsilon:  *eps,
		Out:      os.Stderr,
	})

	var snap, base *sim.Result
	switch *mode {
	case "exact":
		r := s.Exact(*net)
		snap, base = r.Snap, r.Base
	case "predictive":
		r := s.Predictive(*net, *eps)
		snap, base = r.Snap, r.Base
	default:
		fmt.Fprintf(os.Stderr, "snapea-sim: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if *lanes != 1 {
		// Re-simulate the same trace at a different lane count.
		cfg := sim.SnaPEAConfig().WithLanes(*lanes)
		var loads []*sim.LayerLoad
		if *mode == "exact" {
			r := s.Exact(*net)
			loads = sim.LoadsFromTrace(r.Prep.Model, r.Trace, sim.Spills(r.Prep.Model))
		} else {
			r := s.Predictive(*net, *eps)
			loads = sim.LoadsFromTrace(r.Prep.Model, r.Trace, sim.Spills(r.Prep.Model))
		}
		snap = sim.Simulate(cfg, loads)
	}

	fmt.Printf("network   : %s (%s mode)\n", *net, *mode)
	fmt.Printf("snapea    : %s\n", snap)
	fmt.Printf("eyeriss   : %s\n", base)
	fmt.Printf("speedup   : %.2fx\n", snap.Speedup(base))
	fmt.Printf("energy red: %.2fx\n", snap.EnergyReduction(base))
	if *layers {
		t := report.Table{
			Title:   "Per-layer breakdown",
			Headers: []string{"Layer", "SnaPEA cycles", "EYERISS cycles", "Speedup", "Util"},
		}
		baseBy := map[string]int64{}
		for _, l := range base.Layers {
			baseBy[l.Name] = l.Cycles
		}
		for _, l := range snap.Layers {
			sp := 0.0
			if l.Cycles > 0 {
				sp = float64(baseBy[l.Name]) / float64(l.Cycles)
			}
			t.Add(l.Name, fmt.Sprint(l.Cycles), fmt.Sprint(baseBy[l.Name]), report.X(sp), report.F(l.Utilization, 2))
		}
		t.Render(os.Stdout)
	}
}
