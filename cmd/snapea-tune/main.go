// Command snapea-tune runs the paper's Algorithm 1 offline optimizer for
// one network and writes the chosen speculation parameters (Th, N per
// kernel) as JSON — the artifact the accelerator's weight/index buffers
// are loaded from.
//
// The run is cancellable and resumable: SIGINT (or -timeout expiry)
// stops between optimization stages with the completed work checkpointed,
// and -resume restarts from the checkpoint and produces results
// identical to an uninterrupted run.
//
//	snapea-tune -net googlenet -eps 0.03 -o params.json
//	snapea-tune -net vggnet -timeout 10m -checkpoint tune.ckpt
//	snapea-tune -net vggnet -checkpoint tune.ckpt -resume
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"snapea/internal/atomicfile"
	"snapea/internal/calib"
	"snapea/internal/cli"
	"snapea/internal/dataset"
	"snapea/internal/models"
	"snapea/internal/snapea"
	"snapea/internal/tensor"
	"snapea/internal/train"
)

func main() {
	net := flag.String("net", "googlenet", "network to tune")
	eps := flag.Float64("eps", 0.03, "acceptable accuracy loss ε")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	out := flag.String("o", "", "output JSON path (default stdout)")
	optImgs := flag.Int("opt-images", 6, "optimization-set size")
	verbose := flag.Bool("v", false, "log optimizer progress")
	timeout := flag.Duration("timeout", 0, "abort (with checkpoint) after this duration (0 = none)")
	ckptPath := flag.String("checkpoint", "", "checkpoint file (default: <-o path>.ckpt, or snapea-tune.ckpt)")
	resume := flag.Bool("resume", false, "resume from the checkpoint file")
	workers := cli.WorkersFlag(nil)
	obs := cli.ObsFlags(nil)
	flag.Parse()
	workers.Apply()

	obsStop, err := obs.Start("snapea-tune")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		cli.Exit(2)
	}
	defer obsStop()

	if *ckptPath == "" {
		if *out != "" {
			*ckptPath = *out + ".ckpt"
		} else {
			*ckptPath = "snapea-tune.ckpt"
		}
	}

	ctx, stop := cli.Context(*timeout)
	defer stop()

	m, err := models.Build(*net, models.Options{Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "snapea-tune:", err)
		cli.Exit(2)
	}
	samples := dataset.Generate(40+*optImgs, dataset.Config{HW: m.InputShape.H, Seed: *seed + 1})
	trainSet, optSet := samples[:40], samples[40:]

	calImgs := make([]*tensor.Tensor, 6)
	for i := range calImgs {
		calImgs[i] = trainSet[i].Image
	}
	calib.Calibrate(m, calImgs)

	trImgs := make([]*tensor.Tensor, len(trainSet))
	trLabels := make([]int, len(trainSet))
	for i, s := range trainSet {
		trImgs[i], trLabels[i] = s.Image, s.Label
	}
	train.TrainHead(m.Head, train.Features(m, trImgs), trLabels, train.Config{Seed: *seed})

	imgs := make([]*tensor.Tensor, len(optSet))
	lbls := make([]int, len(optSet))
	for i, s := range optSet {
		imgs[i], lbls[i] = s.Image, s.Label
	}
	network := snapea.CompileExact(m)
	opt := snapea.NewOptimizer(network, m.Head, imgs, lbls, snapea.OptConfig{Epsilon: *eps})
	if *verbose {
		opt.SetLog(func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) })
	}

	var ck *snapea.OptCheckpoint
	if *resume {
		ck, err = snapea.LoadOptCheckpoint(*ckptPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "snapea-tune:", err)
			cli.Exit(2)
		}
		if err := ck.Compatible(*net, *eps); err != nil {
			fmt.Fprintln(os.Stderr, "snapea-tune:", err)
			cli.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "snapea-tune: resuming from %s (%d profiled, %d locally optimized layers)\n",
			*ckptPath, len(ck.Profiled), len(ck.Local))
	} else {
		ck = snapea.NewOptCheckpoint(*net, *eps)
	}
	opt.SetCheckpoint(ck, func(ck *snapea.OptCheckpoint) error { return ck.Save(*ckptPath) })

	res, err := opt.RunCtx(ctx)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "snapea-tune: interrupted (%v); progress saved to %s — rerun with -resume to finish\n",
				err, *ckptPath)
			cli.Exit(3)
		}
		cli.Fatalf("snapea-tune", "%v", err)
	}

	file := res.File(*net, *eps)
	enc, err := file.Marshal()
	if err != nil {
		cli.Fatalf("snapea-tune", "%v", err)
	}
	if *out == "" {
		fmt.Println(string(enc))
	} else {
		if err := atomicfile.WriteFile(*out, enc, 0o644); err != nil {
			cli.Fatalf("snapea-tune", "%v", err)
		}
		fmt.Fprintf(os.Stderr, "snapea-tune: wrote %s (%d predictive layers, loss %.3f)\n",
			*out, len(file.Predictive), res.BaseAcc-res.FinalAcc)
	}
	// A finished run owns its checkpoint; leaving it behind would make a
	// later -resume silently reuse stale state.
	os.Remove(*ckptPath)
}
