// Command snapea-tune runs the paper's Algorithm 1 offline optimizer for
// one network and writes the chosen speculation parameters (Th, N per
// kernel) as JSON — the artifact the accelerator's weight/index buffers
// are loaded from.
//
//	snapea-tune -net googlenet -eps 0.03 -o params.json
package main

import (
	"flag"
	"fmt"
	"os"

	"snapea/internal/calib"
	"snapea/internal/dataset"
	"snapea/internal/models"
	"snapea/internal/snapea"
	"snapea/internal/tensor"
	"snapea/internal/train"
)

func main() {
	net := flag.String("net", "googlenet", "network to tune")
	eps := flag.Float64("eps", 0.03, "acceptable accuracy loss ε")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	out := flag.String("o", "", "output JSON path (default stdout)")
	optImgs := flag.Int("opt-images", 6, "optimization-set size")
	verbose := flag.Bool("v", false, "log optimizer progress")
	flag.Parse()

	m, err := models.Build(*net, models.Options{Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "snapea-tune:", err)
		os.Exit(2)
	}
	samples := dataset.Generate(40+*optImgs, dataset.Config{HW: m.InputShape.H, Seed: *seed + 1})
	trainSet, optSet := samples[:40], samples[40:]

	calImgs := make([]*tensor.Tensor, 6)
	for i := range calImgs {
		calImgs[i] = trainSet[i].Image
	}
	calib.Calibrate(m, calImgs)

	trImgs := make([]*tensor.Tensor, len(trainSet))
	trLabels := make([]int, len(trainSet))
	for i, s := range trainSet {
		trImgs[i], trLabels[i] = s.Image, s.Label
	}
	train.TrainHead(m.Head, train.Features(m, trImgs), trLabels, train.Config{Seed: *seed})

	imgs := make([]*tensor.Tensor, len(optSet))
	lbls := make([]int, len(optSet))
	for i, s := range optSet {
		imgs[i], lbls[i] = s.Image, s.Label
	}
	network := snapea.CompileExact(m)
	opt := snapea.NewOptimizer(network, m.Head, imgs, lbls, snapea.OptConfig{Epsilon: *eps})
	if *verbose {
		opt.SetLog(func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) })
	}
	res := opt.Run()

	file := res.File(*net, *eps)
	enc, err := file.Marshal()
	if err != nil {
		fmt.Fprintln(os.Stderr, "snapea-tune:", err)
		os.Exit(1)
	}
	if *out == "" {
		fmt.Println(string(enc))
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "snapea-tune:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "snapea-tune: wrote %s (%d predictive layers, loss %.3f)\n",
		*out, len(file.Predictive), res.BaseAcc-res.FinalAcc)
}
