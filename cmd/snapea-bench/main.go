// Command snapea-bench regenerates the paper's tables and figures
// (Section VI) on the synthetic reproduction pipeline. Run with no flags
// to produce everything, or pick one experiment:
//
//	snapea-bench -exp fig8
//	snapea-bench -exp fig11 -nets alexnet,googlenet
//	snapea-bench -exp all -v
//	snapea-bench -exp faults -fault-weight-bitflip 1e-4
//	snapea-bench -exp all -timeout 30m -checkpoint bench.ckpt
//	snapea-bench -exp all -checkpoint bench.ckpt -resume
//
// Known experiments: fig1 fig2 table1 table2 table3 fig8 fig9 fig10
// table4 table5 fig11 fig12 ablations pruning sparsity faults all.
//
// Batch runs are hardened: a panicking experiment is recorded and the
// rest continue; SIGINT or -timeout stops between experiments with
// completed ones checkpointed (use -resume to pick up where the run
// stopped); the exit status reports partial failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"snapea/internal/cli"
	"snapea/internal/experiments"
	"snapea/internal/models"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (fig1 fig2 table1 table2 table3 fig8 fig9 fig10 table4 table5 fig11 fig12 ablations pruning sparsity faults all)")
	nets := flag.String("nets", "", "comma-separated networks (default: alexnet,googlenet,squeezenet,vggnet)")
	scale := flag.String("scale", "reduced", "model scale: reduced or full")
	eps := flag.Float64("eps", 0.03, "acceptable accuracy loss for the predictive mode")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	verbose := flag.Bool("v", false, "stream optimizer progress")
	testImgs := flag.Int("test-images", 0, "held-out test images per network (0 = suite default)")
	optImgs := flag.Int("opt-images", 0, "optimization-set images (0 = suite default)")
	trainImgs := flag.Int("train-images", 0, "classifier-head training images (0 = suite default)")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = none)")
	ckptPath := flag.String("checkpoint", "snapea-bench.ckpt", "batch checkpoint file for -exp all")
	resume := flag.Bool("resume", false, "skip experiments the checkpoint records as done")
	faultFlags := cli.FaultFlags(nil)
	workers := cli.WorkersFlag(nil)
	obs := cli.ObsFlags(nil)
	flag.Parse()
	if err := cli.ApplyEnv(nil, cli.ObsEnv()); err != nil {
		cli.Fatalf("snapea-bench", "%v", err)
	}
	workers.Apply()

	obsStop, err := obs.Start("snapea-bench")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		cli.Exit(2)
	}
	defer obsStop()

	ctx, stop := cli.Context(*timeout)
	defer stop()

	faultCfg, err := faultFlags.Config(*seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "snapea-bench:", err)
		cli.Exit(2)
	}

	cfg := experiments.Config{
		Seed:        *seed,
		Epsilon:     *eps,
		Verbose:     *verbose,
		Out:         os.Stdout,
		TestImages:  *testImgs,
		OptImages:   *optImgs,
		TrainImages: *trainImgs,
		Ctx:         ctx,
		Faults:      faultCfg,
	}
	if *scale == "full" {
		cfg.Scale = models.Full
	}
	if *nets != "" {
		cfg.Networks = strings.Split(*nets, ",")
	}
	s := experiments.New(cfg)

	list := s.Experiments()
	if *exp != "all" {
		var pick *experiments.NamedExperiment
		for i := range list {
			if list[i].Name == *exp {
				pick = &list[i]
				break
			}
		}
		if pick == nil {
			fmt.Fprintf(os.Stderr, "snapea-bench: unknown experiment %q\n", *exp)
			flag.Usage()
			cli.Exit(2)
		}
		list = []experiments.NamedExperiment{*pick}
	}

	var ck *experiments.BenchCheckpoint
	var save func(*experiments.BenchCheckpoint) error
	if *exp == "all" {
		if *resume {
			ck, err = experiments.LoadBenchCheckpoint(*ckptPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "snapea-bench:", err)
				cli.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "snapea-bench: resuming, %d experiments already done\n", len(ck.Done))
		} else {
			ck = experiments.NewBenchCheckpoint()
		}
		save = func(ck *experiments.BenchCheckpoint) error { return ck.Save(*ckptPath) }
	}

	start := time.Now()
	if *exp == "all" {
		// Fan the network×mode pipeline stages across the worker pool
		// before the serial experiment loop; every experiment then renders
		// from warm caches. Results are identical — only faster.
		s.Prewarm()
	}
	failures := s.RunList(list, ck, save)

	if err := ctx.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "snapea-bench: interrupted after %s (%v)", time.Since(start).Round(time.Second), err)
		if ck != nil {
			fmt.Fprintf(os.Stderr, "; %d experiments checkpointed to %s — rerun with -resume", len(ck.Done), *ckptPath)
		}
		fmt.Fprintln(os.Stderr)
		cli.Exit(3)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "snapea-bench: %d experiment(s) failed:\n", len(failures))
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  %s: %v\n", f.Name, f.Err)
		}
		cli.Exit(1)
	}
	// A complete batch owns its checkpoint; remove it so the next run
	// starts fresh.
	if *exp == "all" && ck != nil {
		os.Remove(*ckptPath)
	}
}
