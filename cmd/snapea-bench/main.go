// Command snapea-bench regenerates the paper's tables and figures
// (Section VI) on the synthetic reproduction pipeline. Run with no flags
// to produce everything, or pick one experiment:
//
//	snapea-bench -exp fig8
//	snapea-bench -exp fig11 -nets alexnet,googlenet
//	snapea-bench -exp all -v
//
// Known experiments: fig1 fig2 table1 table2 table3 fig8 fig9 fig10
// table4 table5 fig11 fig12 ablations all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"snapea/internal/experiments"
	"snapea/internal/models"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (fig1 fig2 table1 table2 table3 fig8 fig9 fig10 table4 table5 fig11 fig12 ablations all)")
	nets := flag.String("nets", "", "comma-separated networks (default: alexnet,googlenet,squeezenet,vggnet)")
	scale := flag.String("scale", "reduced", "model scale: reduced or full")
	eps := flag.Float64("eps", 0.03, "acceptable accuracy loss for the predictive mode")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	verbose := flag.Bool("v", false, "stream optimizer progress")
	testImgs := flag.Int("test-images", 0, "held-out test images per network (0 = suite default)")
	optImgs := flag.Int("opt-images", 0, "optimization-set images (0 = suite default)")
	trainImgs := flag.Int("train-images", 0, "classifier-head training images (0 = suite default)")
	flag.Parse()

	cfg := experiments.Config{
		Seed:        *seed,
		Epsilon:     *eps,
		Verbose:     *verbose,
		Out:         os.Stdout,
		TestImages:  *testImgs,
		OptImages:   *optImgs,
		TrainImages: *trainImgs,
	}
	if *scale == "full" {
		cfg.Scale = models.Full
	}
	if *nets != "" {
		cfg.Networks = strings.Split(*nets, ",")
	}
	s := experiments.New(cfg)

	run := map[string]func(){
		"fig1":   func() { s.Fig1() },
		"fig2":   func() { s.Fig2() },
		"table1": func() { s.Table1() },
		"table2": func() { s.Table2() },
		"table3": func() { s.Table3() },
		"fig8":   func() { s.Fig8() },
		"fig9":   func() { s.Fig9() },
		"fig10":  func() { s.Fig10() },
		"table4": func() { s.Table4() },
		"table5": func() { s.Table5() },
		"fig11":  func() { s.Fig11() },
		"fig12":  func() { s.Fig12() },
		"ablations": func() {
			s.AblationPrefix()
			s.AblationNegOrder()
			s.AblationLaneSync()
			s.AblationQuantization()
			s.AblationFC()
		},
		"pruning":  func() { s.PruningExperiment() },
		"sparsity": func() { s.SparsityComparison() },
		"all": func() {
			s.RunAll()
			fmt.Println()
			s.AblationPrefix()
			s.AblationNegOrder()
			s.AblationLaneSync()
			s.AblationQuantization()
			s.AblationFC()
			fmt.Println()
			s.PruningExperiment()
			fmt.Println()
			s.SparsityComparison()
		},
	}
	f, ok := run[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "snapea-bench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	f()
}
