// Command snapea-trace profiles where convolution windows terminate
// under SnaPEA execution: per-layer mean/percentile op fractions,
// termination causes, and op-count histograms — the distribution view
// behind the paper's Figures 4 and 5.
//
//	snapea-trace -net googlenet
//	snapea-trace -net alexnet -hist -buckets 10
//	snapea-trace -net alexnet -hist -fault-weight-bitflip 1e-4
//
// With -fault-* rates set, the histogram trace runs on a machine whose
// compiled weight buffers were corrupted by a deterministic injector,
// showing how faults shift the termination distribution.
package main

import (
	"flag"
	"fmt"
	"os"

	"snapea/internal/cli"
	"snapea/internal/experiments"
	"snapea/internal/faults"
	"snapea/internal/report"
	"snapea/internal/snapea"
)

func main() {
	net := flag.String("net", "squeezenet", "network to trace")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	hist := flag.Bool("hist", false, "print per-layer op-count histograms")
	buckets := flag.Int("buckets", 8, "histogram buckets")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = none)")
	faultFlags := cli.FaultFlags(nil)
	workers := cli.WorkersFlag(nil)
	obs := cli.ObsFlags(nil)
	flag.Parse()
	workers.Apply()

	obsStop, err := obs.Start("snapea-trace")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		cli.Exit(2)
	}
	defer obsStop()

	ctx, stop := cli.Context(*timeout)
	defer stop()

	faultCfg, err := faultFlags.Config(*seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "snapea-trace:", err)
		cli.Exit(2)
	}

	s := experiments.New(experiments.Config{
		Networks: []string{*net},
		Seed:     *seed,
		Out:      os.Stdout,
		Ctx:      ctx,
	})
	stats, err := s.StopProfileErr(*net)
	if err != nil {
		cli.Fatalf("snapea-trace", "%v", err)
	}
	if !*hist {
		return
	}

	// Re-trace one image for the histograms.
	p, err := s.PreparedErr(*net)
	if err != nil {
		cli.Fatalf("snapea-trace", "%v", err)
	}
	network := snapea.CompileExact(p.Model)
	if faultCfg.Enabled() {
		inj := faults.New(faultCfg)
		network = snapea.CompileFaulty(p.Model, nil, snapea.NegByMagnitude, inj)
		defer func() { fmt.Fprintf(os.Stderr, "snapea-trace: injected faults: %s\n", inj.Stats()) }()
	}
	trace := snapea.NewNetTrace()
	network.Forward(p.TestImgs[0], snapea.RunOpts{CollectWindows: true}, trace)
	fmt.Println()
	for _, st := range stats {
		tr := trace.Layers[st.Node]
		h := snapea.Histogram(tr, *buckets)
		if h == nil {
			continue
		}
		fmt.Printf("%s (K=%d):\n", st.Node, tr.KernelSize)
		for i, v := range h {
			label := fmt.Sprintf("  %3.0f%%-%3.0f%% of K",
				100*float64(i)/float64(*buckets), 100*float64(i+1)/float64(*buckets))
			fmt.Println(report.Bar(label, v, 1, 40))
		}
	}
}
