// Command snapea-trace profiles where convolution windows terminate
// under SnaPEA execution: per-layer mean/percentile op fractions,
// termination causes, and op-count histograms — the distribution view
// behind the paper's Figures 4 and 5.
//
//	snapea-trace -net googlenet
//	snapea-trace -net alexnet -hist -buckets 10
package main

import (
	"flag"
	"fmt"
	"os"

	"snapea/internal/experiments"
	"snapea/internal/report"
	"snapea/internal/snapea"
)

func main() {
	net := flag.String("net", "squeezenet", "network to trace")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	hist := flag.Bool("hist", false, "print per-layer op-count histograms")
	buckets := flag.Int("buckets", 8, "histogram buckets")
	flag.Parse()

	s := experiments.New(experiments.Config{
		Networks: []string{*net},
		Seed:     *seed,
		Out:      os.Stdout,
	})
	stats := s.StopProfile(*net)
	if !*hist {
		return
	}

	// Re-trace one image for the histograms.
	p := s.Prepared(*net)
	network := snapea.CompileExact(p.Model)
	trace := snapea.NewNetTrace()
	network.Forward(p.TestImgs[0], snapea.RunOpts{CollectWindows: true}, trace)
	fmt.Println()
	for _, st := range stats {
		tr := trace.Layers[st.Node]
		h := snapea.Histogram(tr, *buckets)
		if h == nil {
			continue
		}
		fmt.Printf("%s (K=%d):\n", st.Node, tr.KernelSize)
		for i, v := range h {
			label := fmt.Sprintf("  %3.0f%%-%3.0f%% of K",
				100*float64(i)/float64(*buckets), 100*float64(i+1)/float64(*buckets))
			fmt.Println(report.Bar(label, v, 1, 40))
		}
	}
}
